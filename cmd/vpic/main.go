// Command vpic runs one of the built-in input decks and emits an energy
// history CSV, mirroring how VPIC itself is driven by compiled decks.
//
// Usage:
//
//	vpic -deck twostream -steps 2000 -out energy.csv
//	vpic -deck lpi -a0 0.03 -steps 4000 -ranks 2
//	vpic -deck thermal -checkpoint state.ckpt
//	vpic -config run.json                  # file-driven deck (see deck.JSONConfig)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"govpic/internal/balance"
	"govpic/internal/core"
	"govpic/internal/deck"
	"govpic/internal/diag"
	"govpic/internal/output"
	"govpic/internal/perf"
	psort "govpic/internal/sort"
)

func main() {
	var (
		name    = flag.String("deck", "thermal", "deck: thermal | spike | oscillation | twostream | weibel | landau | lpi")
		steps   = flag.Int("steps", 500, "number of time steps")
		every   = flag.Int("every", 10, "energy sample interval (steps)")
		ranks   = flag.Int("ranks", 1, "domain-decomposed rank count")
		workers = flag.Int("workers", 0, "pipeline workers per rank (0 = CPUs/rank, capped at 8)")
		lanes   = flag.Int("lanes", 0, "push kernel width: 8 = wide-lane AoSoA kernel, 1 = scalar oracle (0 = default 8; bit-identical either way)")
		kernel  = flag.String("kernel", "", "wide-lane kernel implementation: asm | go | auto (default auto; bit-identical either way)")
		overlap = flag.Bool("overlap", true, "overlap communication with computation (bit-identical either way)")
		ppc     = flag.Int("ppc", 64, "particles per cell")
		nx      = flag.Int("nx", 64, "cells along x (non-LPI decks)")
		a0      = flag.Float64("a0", 0.02, "laser strength (lpi deck)")
		out     = flag.String("out", "", "energy history CSV path (default stdout summary only)")
		ckpt    = flag.String("checkpoint", "", "write a checkpoint here at the end")
		restore = flag.String("restore", "", "restore state from this checkpoint before running")
		dump    = flag.String("dump", "", "write a binary field snapshot here at the end")
		summary = flag.String("summary", "", "write a JSON run summary here at the end")
		config  = flag.String("config", "", "JSON deck config (overrides -deck and sizing flags)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the step loop here")
		memProf = flag.String("memprofile", "", "write a heap profile here at the end")
		benchJS = flag.String("bench-json", "", "write a machine-readable benchmark record: a .json path, or a directory for BENCH_<date>.json")

		balMode = flag.String("balance", "", "dynamic load balancing: off | checkpoint | online (default: deck/config setting)")
		balInt  = flag.Int("balance-interval", 0, "steps between balance checks (0 = default 10)")
		balThr  = flag.Float64("balance-threshold", 0, "max/mean particle imbalance that triggers a repartition (0 = default 1.25)")

		// Distributed mode: -local-ranks forks one process per rank on
		// this machine; -rank/-join runs one rank of a (possibly
		// multi-machine) TCP world.
		rank       = flag.Int("rank", -1, "this process's rank in a distributed run (-1 = in-process)")
		join       = flag.String("join", "", "rendezvous address (rank 0 listens here, peers dial it)")
		listen     = flag.String("listen", "", "mesh listen address of this rank (default: any port)")
		localRanks = flag.Int("local-ranks", 0, "fork N local processes, one per rank, over TCP")
		stateCRC   = flag.String("state-crc", "", "write the per-rank state CRC fingerprint JSON here")
		commJSON   = flag.String("comm-json", "", "write per-rank comm link/class stats JSON here")
		heartbeat  = flag.Duration("heartbeat", 0, "transport heartbeat interval (0 = default)")
		peerTO     = flag.Duration("peer-timeout", 0, "transport failure-detection timeout (0 = default)")
	)
	flag.Parse()

	if *localRanks > 1 {
		os.Exit(launchLocal(*localRanks, os.Args[1:]))
	}

	var d deck.Deck
	var err error
	if *config != "" {
		f, ferr := os.Open(*config)
		if ferr != nil {
			log.Fatal(ferr)
		}
		var cfgSteps int
		d, cfgSteps, err = deck.FromJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		*steps = cfgSteps
	} else {
		d, err = buildDeck(*name, *nx, *ppc, *ranks, *a0)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *workers != 0 {
		d.Cfg.Workers = *workers
	}
	if *lanes != 0 {
		d.Cfg.Lanes = *lanes
	}
	if *kernel != "" {
		d.Cfg.Kernel = *kernel
	}
	// An explicit -overlap wins; otherwise a config file's setting
	// stands and the flag default applies only to flag-driven runs.
	overlapSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "overlap" {
			overlapSet = true
		}
	})
	if overlapSet || *config == "" {
		d.Cfg.NoOverlap = !*overlap
	}
	if *balMode != "" {
		mode, err := balance.ParseMode(*balMode)
		if err != nil {
			log.Fatal(err)
		}
		d.Cfg.Balance.Mode = mode
	}
	if *balInt != 0 {
		d.Cfg.Balance.Interval = *balInt
	}
	if *balThr != 0 {
		d.Cfg.Balance.Threshold = *balThr
	}
	if *rank >= 0 {
		if *join == "" {
			log.Fatal("-rank needs -join (the rendezvous address)")
		}
		err := runDistributed(d, distFlags{
			rank: *rank, ranks: *ranks, join: *join, listen: *listen,
			heartbeat: *heartbeat, peerTimeout: *peerTO,
			steps: *steps, every: *every,
			out: *out, stateCRC: *stateCRC, commJSON: *commJSON,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	sim, err := d.New()
	if err != nil {
		log.Fatal(err)
	}
	if *restore != "" {
		sim, err = restoreCheckpoint(sim, d, *restore)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restored at step %d (t = %.3f)\n", sim.StepCount(), sim.Time())
	}

	fmt.Printf("deck %q: %d cells, %d particles, %d ranks × %d workers, %s kernel, dt = %.4g\n",
		d.Name, d.Cfg.NX*d.Cfg.NY*d.Cfg.NZ, sim.TotalParticles(), d.Cfg.NRanks, sim.Cfg.Workers, sim.Cfg.Kernel, d.Cfg.DT)

	var hist diag.History
	hist.Add(sim.Energy())
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	// Tier A (checkpoint-boundary rebalancing) runs in the driver: at
	// every balance interval the state is checkpointed to memory and
	// re-binned into a bisection-optimal layout when imbalanced.
	// Cumulative counters stay with the discarded simulation, so carry
	// them across swaps.
	var carry counterCarry
	rebalances := 0
	tierA := d.Cfg.Balance.Mode == balance.Checkpoint && d.Cfg.NRanks > 1
	wallStart := time.Now()
	for s := 0; s < *steps; s++ {
		sim.Step()
		if tierA && sim.StepCount()%d.Cfg.Balance.Interval == 0 {
			sim2, did, err := core.Rebalanced(sim)
			if err != nil {
				log.Fatal(err)
			}
			if did {
				carry.absorb(sim)
				sim = sim2
				rebalances++
			}
		}
		if (s+1)%*every == 0 {
			hist.Add(sim.Energy())
		}
	}
	wall := time.Since(wallStart)
	if *cpuProf != "" {
		fmt.Printf("cpu profile covers the %d-step loop: %s\n", *steps, *cpuProf)
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // report live steady-state allocations, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *memProf)
	}
	last := hist.Samples[len(hist.Samples)-1]
	fmt.Printf("t = %.3f  field E = %.4g  field B = %.4g  kinetic = %.4g  total = %.4g\n",
		last.Time, last.EField, last.BField, sum(last.Kinetic), last.Total)
	fmt.Printf("relative energy drift: %.3g\n", hist.RelativeDrift())
	b := sim.PerfBreakdown()
	b.Merge(&carry.perf)
	fmt.Print(b.Report())
	sp := sim.SortPasses()
	sp.Merge(carry.sort)
	if tot := sp.CountSeconds + sp.MergeSeconds + sp.ScatterSeconds; tot > 0 {
		fmt.Printf("sort passes: count %4.1f%%  merge %4.1f%%  scatter %4.1f%%  (%d sorts, %.3fs)\n",
			100*sp.CountSeconds/tot, 100*sp.MergeSeconds/tot, 100*sp.ScatterSeconds/tot, sp.Sorts, tot)
	}
	if d.Cfg.NRanks > 1 {
		printCommTables(sim.CommLinks(), sim.CommTraffic())
		fmt.Printf("per-rank particles: %v  push imbalance (max/mean): %.3f\n",
			sim.PerRankParticles(), sim.ImbalanceRatio())
	}
	if d.Cfg.Balance.Mode != balance.Off {
		fmt.Printf("balance %s: %d checkpoint rebalances, x-cuts %v\n",
			d.Cfg.Balance.Mode, rebalances, sim.CutsX())
	}
	if *stateCRC != "" {
		if err := writeStateCRCFile(*stateCRC, d.Name, sim.StepCount(), d.Cfg.NRanks, sim.StateCRCs()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *stateCRC)
	}
	if *commJSON != "" {
		if err := writeCommJSON(*commJSON, inProcessReports(sim)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *commJSON)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		rows := make([][]float64, len(hist.Samples))
		for i, smp := range hist.Samples {
			rows[i] = []float64{float64(smp.Step), smp.Time, smp.EField, smp.BField, sum(smp.Kinetic), smp.Total}
		}
		if err := diag.WriteCSV(f, []string{"step", "time", "efield", "bfield", "kinetic", "total"}, rows); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *out)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		rk := sim.Ranks[0]
		g := rk.D.G
		sx, sy, sz := g.Strides()
		snaps := []output.Snapshot{
			{Name: "ex", NX: sx, NY: sy, NZ: sz, Data: rk.D.F.Ex},
			{Name: "ey", NX: sx, NY: sy, NZ: sz, Data: rk.D.F.Ey},
			{Name: "ez", NX: sx, NY: sy, NZ: sz, Data: rk.D.F.Ez},
			{Name: "cbx", NX: sx, NY: sy, NZ: sz, Data: rk.D.F.Bx},
			{Name: "cby", NX: sx, NY: sy, NZ: sz, Data: rk.D.F.By},
			{Name: "cbz", NX: sx, NY: sy, NZ: sz, Data: rk.D.F.Bz},
		}
		if err := output.WriteSnapshots(f, snaps); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s (rank 0 fields)\n", *dump)
	}
	if *summary != "" {
		f, err := os.Create(*summary)
		if err != nil {
			log.Fatal(err)
		}
		pushRate := perf.Rate(carry.pushed+sim.PushedParticles(), wall)
		err = output.WriteSummary(f, output.Summary{
			Deck:      d.Name,
			Steps:     sim.StepCount(),
			Time:      sim.Time(),
			Particles: sim.TotalParticles(),
			Ranks:     d.Cfg.NRanks,
			WallClock: wall.Seconds(),
			Rates: map[string]float64{
				"Mpart_per_s": pushRate / 1e6,
				"Gflop_per_s": float64(carry.flops+sim.Flops()) / wall.Seconds() / 1e9,
			},
			Energy: map[string]float64{
				"total": last.Total, "field": last.EField + last.BField,
				"absorbed": sim.LostEnergy(),
			},
			Notes: d.Notes,
		})
		if err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *summary)
	}
	if *benchJS != "" {
		path := *benchJS
		if !strings.HasSuffix(path, ".json") {
			path = filepath.Join(path, fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02")))
		}
		pb := sim.PerfBreakdown()
		pb.Merge(&carry.perf)
		stats := pb.Snapshot()
		secs := make([]output.BenchSection, len(stats))
		for i, st := range stats {
			secs[i] = output.BenchSection{
				Name: st.Name, Seconds: st.Seconds, Share: st.Share,
				BytesMoved: st.BytesMoved, EffGBs: st.EffGBs,
			}
		}
		rec := output.BenchRecord{
			Date:               time.Now().UTC().Format("2006-01-02"),
			Deck:               d.Name,
			Steps:              sim.StepCount(),
			Particles:          sim.TotalParticles(),
			Ranks:              d.Cfg.NRanks,
			Workers:            sim.Cfg.Workers,
			Kernel:             sim.Cfg.Kernel,
			Overlap:            !d.Cfg.NoOverlap,
			CommWaitSeconds:    pb.CommWait().Seconds(),
			CommOverlapSeconds: pb.CommOverlap().Seconds(),
			WallSeconds:        wall.Seconds(),
			MPartPerS:          perf.Rate(carry.pushed+sim.PushedParticles(), wall) / 1e6,
			GFlopPerS:          float64(carry.flops+sim.Flops()) / wall.Seconds() / 1e9,
			PushEffGBs:         pb.EffectiveGBs(perf.Push),
			Sections:           secs,
			CommTraffic:        classRecords(sim.CommTraffic(), sim.StepCount()),
			CommLinks:          linkRecords(sim.CommLinks()),
		}
		if d.Cfg.NRanks > 1 {
			rec.ImbalanceRatio = sim.ImbalanceRatio()
			rec.PerRankParticles = sim.PerRankParticles()
			rec.Balance = d.Cfg.Balance.Mode.String()
		}
		bsp := sim.SortPasses()
		bsp.Merge(carry.sort)
		if bsp.Sorts > 0 {
			rec.SortPasses = &output.BenchSortPasses{
				CountSeconds:   bsp.CountSeconds,
				MergeSeconds:   bsp.MergeSeconds,
				ScatterSeconds: bsp.ScatterSeconds,
				Sorts:          bsp.Sorts,
			}
		}
		err := output.WriteFileAtomic(path, func(w io.Writer) error {
			return output.WriteBench(w, rec)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *ckpt != "" {
		// Atomic (temp + fsync + rename): a crash mid-write can never
		// corrupt a previous checkpoint at the same path.
		if err := output.WriteFileAtomic(*ckpt, sim.Checkpoint); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *ckpt)
	}
}

func buildDeck(name string, nx, ppc, ranks int, a0 float64) (deck.Deck, error) {
	switch name {
	case "thermal":
		return deck.Thermal(nx, 4, 4, ppc, ranks, 0.2, 0.05), nil
	case "spike":
		return deck.Spike(nx, 8, 8, ppc, ranks, 0.2, 0.05), nil
	case "oscillation":
		return deck.PlasmaOscillation(nx, ppc, 0.25), nil
	case "twostream":
		return deck.TwoStream(nx, ppc, 0.2, 0.1), nil
	case "weibel":
		return deck.Weibel(nx, ppc, 0.2, 0.1, 0.01), nil
	case "landau":
		return deck.Landau(nx, ppc, 2, 0.2, 0.04, 0.005), nil
	case "lpi":
		p := deck.DefaultLPI(a0)
		p.NRanks = ranks
		p.PPC = ppc
		return deck.LPI(p)
	default:
		return deck.Deck{}, fmt.Errorf("unknown deck %q", name)
	}
}

// counterCarry accumulates the cumulative counters of simulations
// discarded by Tier A rebalancing swaps, so end-of-run reports cover
// the whole run.
type counterCarry struct {
	perf   perf.Breakdown
	sort   psort.Passes
	pushed int64
	flops  int64
}

func (cc *counterCarry) absorb(s *core.Simulation) {
	pb := s.PerfBreakdown()
	cc.perf.Merge(&pb)
	cc.sort.Merge(s.SortPasses())
	cc.pushed += s.PushedParticles()
	cc.flops += s.Flops()
}

// restoreCheckpoint loads a checkpoint, accepting a layout other than
// the simulation's own: when the file records different partition
// planes (it was written mid-rebalance), the run is rebuilt pinned to
// the recorded cuts — a bit-exact resume into the geometry the state
// was written in. If that is not possible (e.g. the recorded
// decomposition is not x-only under this rank count, or boundaries are
// not periodic), the state is re-binned into the current geometry
// instead. Grid or species mismatches stay fatal.
func restoreCheckpoint(sim *core.Simulation, d deck.Deck, path string) (*core.Simulation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	err = sim.Restore(f)
	var lme *core.LayoutMismatchError
	if !errors.As(err, &lme) {
		return sim, err
	}
	if lme.Layout.Dec.PX == d.Cfg.NRanks {
		cfg2 := d.Cfg
		cfg2.CutsX = append([]int(nil), lme.Layout.CX...)
		if s2, err2 := core.New(cfg2); err2 == nil {
			if _, err2 = f.Seek(0, io.SeekStart); err2 != nil {
				return nil, err2
			}
			if err2 = s2.Restore(f); err2 == nil {
				fmt.Printf("checkpoint layout differs: resumed into its recorded x-cuts %v\n", cfg2.CutsX)
				return s2, nil
			}
		}
	}
	if _, err = f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if err = sim.RestoreRebin(f); err != nil {
		return nil, fmt.Errorf("re-binned restore: %w", err)
	}
	fmt.Printf("checkpoint layout differs: re-binned %v into the current geometry\n", lme.Layout.CX)
	return sim, nil
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
