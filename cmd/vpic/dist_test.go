package main

import (
	"bytes"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"govpic/internal/push"
)

// TestMain lets the test binary act as the vpic CLI when re-executed
// with VPIC_E2E_MAIN=1: the multi-process tests below spawn real rank
// processes from the binary already built for this package.
func TestMain(m *testing.M) {
	if os.Getenv("VPIC_E2E_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// vpicCmd builds an exec.Cmd that re-runs this test binary as the CLI.
func vpicCmd(args ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "VPIC_E2E_MAIN=1")
	return cmd
}

// TestDistributedCRCMatchesInProcess is the end-to-end form of the
// transport-transparency proof: the same deck run in one process and as
// two forked rank processes over TCP must write byte-identical
// state-CRC artifacts. This is exactly what the CI smoke step diffs.
func TestDistributedCRCMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	dir := t.TempDir()
	local := filepath.Join(dir, "crc-local.json")
	dist := filepath.Join(dir, "crc-tcp.json")
	deckArgs := []string{"-deck", "thermal", "-nx", "16", "-ppc", "8",
		"-steps", "4", "-every", "4", "-ranks", "2", "-workers", "1"}

	out, err := vpicCmd(append(deckArgs, "-state-crc", local)...).CombinedOutput()
	if err != nil {
		t.Fatalf("in-process run: %v\n%s", err, out)
	}
	out, err = vpicCmd(append(deckArgs, "-local-ranks", "2", "-state-crc", dist)...).CombinedOutput()
	if err != nil {
		t.Fatalf("distributed run: %v\n%s", err, out)
	}

	a, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dist)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("state CRC artifacts differ:\nin-process: %s\nTCP:        %s", a, b)
	}
	if !strings.Contains(string(out), "comm links:") {
		t.Errorf("distributed run did not print the comm report:\n%s", out)
	}
}

// TestDistributedPeerKillDetected kills one rank process mid-run and
// requires the survivor to exit promptly with an attributed peer-death
// error instead of hanging.
func TestDistributedPeerKillDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	join := ln.Addr().String()
	ln.Close()

	// Enough steps that neither rank can finish before the kill.
	common := []string{"-deck", "thermal", "-nx", "16", "-ppc", "8",
		"-steps", "200000", "-every", "0", "-ranks", "2", "-workers", "1",
		"-join", join, "-heartbeat", "50ms", "-peer-timeout", "500ms"}
	r0 := vpicCmd(append(common, "-rank", "0")...)
	var r0out bytes.Buffer
	r0.Stdout, r0.Stderr = &r0out, &r0out
	if err := r0.Start(); err != nil {
		t.Fatal(err)
	}
	defer r0.Process.Kill()
	r1 := vpicCmd(append(common, "-rank", "1")...)
	if err := r1.Start(); err != nil {
		t.Fatal(err)
	}
	defer r1.Process.Kill()

	// Let the world connect and take some steps, then kill rank 1.
	time.Sleep(1500 * time.Millisecond)
	if err := r1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	r1.Wait()

	done := make(chan error, 1)
	go func() { done <- r0.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("rank 0 exited cleanly after peer death:\n%s", r0out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("rank 0 hung after peer death (no failure detection):\n%s", r0out.String())
	}
	if !strings.Contains(r0out.String(), "dead") {
		t.Errorf("rank 0's error does not attribute the dead peer:\n%s", r0out.String())
	}
}

// TestOverlapMatrixCRCIdentical is the end-to-end acceptance matrix of
// the overlap engine: the same 4-rank deck (a 2×1×2 decomposition, so
// the exchange crosses two axes) run {in-process, TCP multi-process} ×
// {-overlap=true, -overlap=false} must write four byte-identical
// state-CRC artifacts.
func TestOverlapMatrixCRCIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	dir := t.TempDir()
	deckArgs := []string{"-deck", "thermal", "-nx", "8", "-ppc", "8",
		"-steps", "4", "-every", "4", "-ranks", "4", "-workers", "1"}
	type variant struct {
		name string
		args []string
	}
	variants := []variant{
		{"local-overlap", []string{"-overlap=true"}},
		{"local-sync", []string{"-overlap=false"}},
		{"tcp-overlap", []string{"-local-ranks", "4", "-overlap=true"}},
		{"tcp-sync", []string{"-local-ranks", "4", "-overlap=false"}},
		// The kernel axis: asm and go claim bitwise identity, so every
		// variant must land on the same CRC as the overlap/transport ones.
		{"local-kernel-go", []string{"-overlap=true", "-kernel=go"}},
	}
	if push.AsmAvailable() {
		variants = append(variants,
			variant{"local-kernel-asm", []string{"-overlap=true", "-kernel=asm"}},
			variant{"tcp-kernel-asm", []string{"-local-ranks", "4", "-overlap=true", "-kernel=asm"}},
		)
	}
	artifacts := make([][]byte, len(variants))
	for i, v := range variants {
		crc := filepath.Join(dir, v.name+".json")
		args := append(append(append([]string{}, deckArgs...), v.args...), "-state-crc", crc)
		out, err := vpicCmd(args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s run: %v\n%s", v.name, err, out)
		}
		if artifacts[i], err = os.ReadFile(crc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(variants); i++ {
		if !bytes.Equal(artifacts[0], artifacts[i]) {
			t.Errorf("state CRC differs between %s and %s:\n%s\nvs\n%s",
				variants[0].name, variants[i].name, artifacts[0], artifacts[i])
		}
	}
}
