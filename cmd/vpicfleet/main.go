// Command vpicfleet is the fleet coordinator: it federates many vpicd
// workers behind one control plane. Workers register (vpicd
// -coordinator self-registers) and are health-checked with bounded
// probes; jobs and sweep shards are scheduled with fair-share
// per-tenant quotas onto the worker with the most queue headroom,
// honouring worker 429 backpressure; running shards have their CRC'd
// checkpoints mirrored so a dead worker's jobs relocate — resuming
// bit-identically — onto healthy ones; clients stream step-granular
// energy histories over SSE that survive relocations gaplessly.
//
// Usage:
//
//	vpicfleet -addr :8990 -mirror /var/lib/vpicfleet
//
// Then, e.g.:
//
//	vpicd -addr :8970 -spool spoolA -coordinator http://127.0.0.1:8990 &
//	vpicd -addr :8971 -spool spoolB -coordinator http://127.0.0.1:8990 &
//	curl -X POST :8990/v1/jobs -H 'X-Tenant: lpi-team' \
//	  -d '{"deck":{"deck":"lpi","steps":4000},"sweep":{"a0":[0.01,0.02,0.03]}}'
//	curl :8990/v1/jobs/fj-000001
//	curl -N :8990/v1/jobs/fj-000001/events
//	curl :8990/metrics
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"govpic/internal/fleet"
)

func main() {
	var (
		addr         = flag.String("addr", ":8990", "HTTP listen address")
		mirror       = flag.String("mirror", "vpicfleet-mirror", "checkpoint/result mirror directory")
		workers      = flag.String("workers", "", "comma-separated worker base URLs to pre-register")
		probeEvery   = flag.Duration("probe-every", 2*time.Second, "worker health-check interval")
		probeTimeout = flag.Duration("probe-timeout", time.Second, "bound on one health probe")
		deadAfter    = flag.Int("dead-after", 3, "consecutive failed probes before a worker is declared dead")
		pollEvery    = flag.Duration("poll-every", 500*time.Millisecond, "shard status-poll and mirror interval")
		tenantQuota  = flag.Int("tenant-quota", 0, "max concurrently placed shards per tenant (0 = uncapped)")
	)
	flag.Parse()

	c, err := fleet.New(fleet.Config{
		MirrorDir:    *mirror,
		ProbeEvery:   *probeEvery,
		ProbeTimeout: *probeTimeout,
		DeadAfter:    *deadAfter,
		PollEvery:    *pollEvery,
		TenantQuota:  *tenantQuota,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *workers != "" {
		for _, u := range strings.Split(*workers, ",") {
			if _, err := c.Register(strings.TrimSpace(u)); err != nil {
				log.Fatalf("vpicfleet: pre-register %q: %v", u, err)
			}
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("vpicfleet: listening on %s (mirror %s, probe %s x%d, poll %s)",
			*addr, *mirror, *probeEvery, *deadAfter, *pollEvery)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("vpicfleet: shutdown requested")
	case err := <-errc:
		log.Fatal(err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx)
	if err := c.Close(); err != nil {
		log.Printf("vpicfleet: close: %v", err)
	}
	log.Printf("vpicfleet: exiting (placed jobs keep running on their workers)")
}
