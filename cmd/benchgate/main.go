// Command benchgate compares a freshly generated benchmark record
// against the committed baseline BENCH_<date>.json and fails (exit 1)
// on a regression beyond the tolerance: throughput (Mpart/s) dropping,
// or the modeled push-section bytes per particle-step growing. It is
// the CI tripwire for the particle inner loop — the two numbers it
// guards are the ones the whole perf effort optimizes.
//
// Usage:
//
//	benchgate -baseline . -candidate bench-record.json [-tol 0.10]
//
// -baseline may be a BENCH_*.json file or a directory, in which case
// the lexicographically newest BENCH_*.json inside it is used (the
// date-stamped names sort chronologically).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"govpic/internal/output"
)

func main() {
	baseline := flag.String("baseline", ".", "baseline BENCH_*.json file, or a directory holding them")
	candidate := flag.String("candidate", "bench-record.json", "candidate benchmark record to check")
	tol := flag.Float64("tol", 0.10, "allowed fractional regression before failing")
	flag.Parse()

	base, basePath, err := loadBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	cand, err := loadRecord(*candidate)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("baseline  %s (%s: deck=%s ranks=%d steps=%d kernel=%s)\n",
		basePath, base.Date, base.Deck, base.Ranks, base.Steps, kernelName(base))
	fmt.Printf("candidate %s (%s: deck=%s ranks=%d steps=%d kernel=%s)\n",
		*candidate, cand.Date, cand.Deck, cand.Ranks, cand.Steps, kernelName(cand))

	failed := false

	// Throughput: lower is worse.
	floor := base.MPartPerS * (1 - *tol)
	fmt.Printf("Mpart/s            baseline %8.3f  candidate %8.3f  floor %8.3f",
		base.MPartPerS, cand.MPartPerS, floor)
	if cand.MPartPerS < floor {
		fmt.Printf("  REGRESSION\n")
		failed = true
	} else {
		fmt.Printf("  ok\n")
	}

	// Push memory traffic per particle-step: higher is worse. Derived
	// from the push section's modeled bytes over total particle pushes,
	// so it is deterministic for a fixed deck — any drift is a real
	// change in the kernel's traffic, not scheduling noise.
	bBase, okB := bytesPerPush(base)
	bCand, okC := bytesPerPush(cand)
	switch {
	case !okB:
		fmt.Printf("B/particle-step    baseline record has no push section — skipping\n")
	case !okC:
		fmt.Printf("B/particle-step    candidate record has no push section  REGRESSION\n")
		failed = true
	default:
		ceil := bBase * (1 + *tol)
		fmt.Printf("B/particle-step    baseline %8.2f  candidate %8.2f  ceiling %8.2f",
			bBase, bCand, ceil)
		if bCand > ceil {
			fmt.Printf("  REGRESSION\n")
			failed = true
		} else {
			fmt.Printf("  ok\n")
		}
	}

	// Load imbalance on multi-rank records: higher is worse. The ratio
	// is max/mean per-rank push seconds, so 1.0 is perfect balance.
	// Skipped when the baseline predates imbalance recording or either
	// record is single-rank; regressions only count against a baseline
	// measured under the same balance mode (comparing a balanced run to
	// a static one is an experiment, not a regression).
	switch {
	case base.ImbalanceRatio == 0:
		fmt.Printf("imbalance          baseline record has none — skipping\n")
	case cand.ImbalanceRatio == 0:
		fmt.Printf("imbalance          candidate record has none — skipping\n")
	case base.Balance != cand.Balance:
		fmt.Printf("imbalance          balance modes differ (%q vs %q) — skipping\n", base.Balance, cand.Balance)
	default:
		// The excess over perfect balance may grow by tol (an absolute
		// floor of tol keeps near-1.0 baselines from gating on noise).
		ceil := 1 + (base.ImbalanceRatio-1)*(1+*tol) + *tol
		fmt.Printf("imbalance          baseline %8.3f  candidate %8.3f  ceiling %8.3f",
			base.ImbalanceRatio, cand.ImbalanceRatio, ceil)
		if cand.ImbalanceRatio > ceil {
			fmt.Printf("  REGRESSION\n")
			failed = true
		} else {
			fmt.Printf("  ok\n")
		}
	}

	if failed {
		fmt.Println("benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// kernelName reports which push kernel produced a record; records
// written before the asm/go switch carry no tag.
func kernelName(r output.BenchRecord) string {
	if r.Kernel == "" {
		return "(untagged)"
	}
	return r.Kernel
}

// bytesPerPush models the push section's memory traffic per
// particle-step from the record's section table.
func bytesPerPush(r output.BenchRecord) (float64, bool) {
	for _, s := range r.Sections {
		if s.Name == "push" && s.BytesMoved > 0 && r.Particles > 0 && r.Steps > 0 {
			return float64(s.BytesMoved) / (float64(r.Particles) * float64(r.Steps)), true
		}
	}
	return 0, false
}

func loadBaseline(path string) (output.BenchRecord, string, error) {
	st, err := os.Stat(path)
	if err != nil {
		return output.BenchRecord{}, "", err
	}
	if st.IsDir() {
		matches, err := filepath.Glob(filepath.Join(path, "BENCH_*.json"))
		if err != nil || len(matches) == 0 {
			return output.BenchRecord{}, "", fmt.Errorf("no BENCH_*.json baseline found in %s", path)
		}
		sort.Strings(matches)
		path = matches[len(matches)-1]
	}
	rec, err := loadRecord(path)
	return rec, path, err
}

func loadRecord(path string) (output.BenchRecord, error) {
	var rec output.BenchRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
