// Command perfmodel prints the campaign tier table (E1) and the
// calibrated Roadrunner machine-model extrapolation (E6): sustained and
// inner-loop Pflop/s versus triblade count, reproducing the abstract's
// 0.488 / 0.374 Pflop/s headline at the full 3060-triblade machine.
package main

import (
	"fmt"

	"govpic/internal/experiments"
)

func main() {
	fmt.Print(experiments.E1Campaign(100).Format())
	fmt.Println()
	fmt.Print(experiments.E6RoadrunnerModel().Format())
}
