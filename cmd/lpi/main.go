// Command lpi runs the paper's parameter study: laser reflectivity as a
// function of laser intensity in a hohlraum-like plasma (E7), plus the
// trapping (E8) and time-history burstiness (E9) diagnostics.
//
// Usage:
//
//	lpi                                # default 5-point sweep, small tier
//	lpi -a0 0.01,0.02,0.04,0.07,0.1 -scale medium -csv sweep.csv
//	lpi -experiment trapping -a0max 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"govpic/internal/diag"
	"govpic/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("experiment", "reflectivity", "reflectivity | trapping | history | dispersion")
		a0list = flag.String("a0", "0.01,0.02,0.04,0.07,0.1", "comma-separated pump strengths")
		a0max  = flag.Float64("a0max", 0.05, "pump strength for trapping/history high case")
		a0min  = flag.Float64("a0min", 0.01, "pump strength for history low case")
		scale  = flag.String("scale", "small", "small | medium | large")
		csv    = flag.String("csv", "", "also write the table as CSV")
	)
	flag.Parse()

	sc, err := parseScale(*scale)
	if err != nil {
		log.Fatal(err)
	}

	var r experiments.Result
	switch *exp {
	case "reflectivity":
		a0s, err := parseFloats(*a0list)
		if err != nil {
			log.Fatal(err)
		}
		r, err = experiments.E7Reflectivity(a0s, sc)
		if err != nil {
			log.Fatal(err)
		}
	case "trapping":
		r, err = experiments.E8Trapping(*a0max, sc)
		if err != nil {
			log.Fatal(err)
		}
	case "history":
		r, err = experiments.E9TimeHistory(*a0min, *a0max, sc)
		if err != nil {
			log.Fatal(err)
		}
	case "dispersion":
		r, err = experiments.DispersionDiagram(512, 1024)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
	fmt.Print(r.Format())

	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			log.Fatal(err)
		}
		if err := diag.WriteCSV(f, r.Headers, r.Rows); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *csv)
	}
}

func parseScale(s string) (experiments.Scale, error) {
	switch s {
	case "small":
		return experiments.Small, nil
	case "medium":
		return experiments.Medium, nil
	case "large":
		return experiments.Large, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad a0 list entry %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
