// Command validate runs the physics-validation suite (internal/valid):
// every case builds a deck through the JSON front end, runs it, extracts
// its observables, and verdicts them against internal/theory analytic
// values or committed reference bands. The structured report is written
// as VALID_<date>.json; a failing case exits 1 — CI runs the fast tier
// on every push.
//
// Usage:
//
//	validate -tier fast                 # CI tier: seconds per case
//	validate -tier full                 # adds the longer cases
//	validate -case tnsa-ion-acceleration
//	validate -tier fast -rank-world 2   # distributed RankSim members
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"govpic/internal/mp"
	"govpic/internal/valid"
)

func main() {
	tier := flag.String("tier", "fast", "suite tier: fast | full")
	one := flag.String("case", "", "run a single named case instead of a tier")
	out := flag.String("out", ".", "directory for the VALID_<date>.json report")
	list := flag.Bool("list", false, "list registered cases and exit")
	rankWorld := flag.Int("rank-world", 0, "run setup-free cases as a world of N RankSim members (0 = in-process)")
	flag.Parse()

	reg := valid.Builtin()
	if *list {
		for _, c := range reg.Cases(valid.TierFull) {
			fmt.Printf("%-24s [%s] %s\n", c.Name, c.Tier, c.About)
		}
		return
	}
	t := valid.Tier(*tier)
	if t != valid.TierFast && t != valid.TierFull {
		fatal(fmt.Errorf("unknown tier %q (fast|full)", *tier))
	}

	var rep valid.Report
	switch {
	case *one != "":
		c, ok := reg.Lookup(*one)
		if !ok {
			fatal(fmt.Errorf("unknown case %q (use -list)", *one))
		}
		res := runOne(c, *rankWorld)
		fmt.Println(valid.FormatCase(res))
		rep = valid.RunSuite(&valid.Registry{}, t, nil) // empty shell for the report envelope
		rep.Cases = []valid.CaseResult{res}
		rep.Pass = res.Pass
		rep.Seconds = res.Seconds
	case *rankWorld > 1:
		rep = runSuiteRanks(reg, t, *rankWorld)
	default:
		rep = valid.RunSuite(reg, t, func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		})
	}

	path, err := rep.Write(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("report: %s (%d cases, %.1fs)\n", path, len(rep.Cases), rep.Seconds)
	if !rep.Pass {
		fmt.Println("validate: FAIL")
		os.Exit(1)
	}
	fmt.Println("validate: ok")
}

// runOne executes a single case, distributed when asked and possible.
func runOne(c valid.Case, rankWorld int) valid.CaseResult {
	if rankWorld > 1 {
		if res, ok := tryRanks(c, rankWorld); ok {
			return res
		}
		fmt.Printf("%s: needs an in-process setup hook; running in-process\n", c.Name)
	}
	return valid.RunCase(c)
}

// runSuiteRanks runs each case across an in-process world of RankSim
// members (one goroutine per rank, real collectives); cases that need
// an in-process setup hook fall back to the all-ranks path.
func runSuiteRanks(reg *valid.Registry, t valid.Tier, n int) valid.Report {
	rep := valid.RunSuite(&valid.Registry{}, t, nil) // envelope (date, tier)
	rep.Pass = true
	for _, c := range reg.Cases(t) {
		res, ok := tryRanks(c, n)
		if !ok {
			res = valid.RunCase(c)
		}
		fmt.Println(valid.FormatCase(res))
		if !res.Pass {
			rep.Pass = false
		}
		rep.Seconds += res.Seconds
		rep.Cases = append(rep.Cases, res)
	}
	return rep
}

// tryRanks runs one case across n RankSim members; ok is false when
// the case's deck needs an in-process setup hook.
func tryRanks(c valid.Case, n int) (valid.CaseResult, bool) {
	if !valid.CanRunRanks(c, n) {
		return valid.CaseResult{}, false
	}
	world := mp.NewWorld(n)
	results := make([]valid.CaseResult, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = valid.RunCaseRanks(c, world.Comm(r))
		}(r)
	}
	wg.Wait()
	return results[0], true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "validate:", err)
	os.Exit(1)
}
