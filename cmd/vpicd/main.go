// Command vpicd is the simulation job service: it accepts deck configs
// (single runs or parameter sweeps) over HTTP, queues them with bounded
// backpressure, executes them on a runner pool with periodic bit-exact
// checkpoints, and resumes interrupted jobs from its spool directory on
// restart. SIGTERM/SIGINT checkpoint every running job before exit, so
// a rolling restart loses no work.
//
// Usage:
//
//	vpicd -addr :8970 -spool /var/lib/vpicd
//
// Then, e.g.:
//
//	curl -X POST :8970/v1/jobs -d '{"deck":{"deck":"lpi","steps":4000},"sweep":{"a0":[0.01,0.02,0.03]}}'
//	curl :8970/v1/jobs/job-000001
//	curl :8970/v1/jobs/job-000001/result
//	curl -N :8970/v1/jobs/job-000001/events
//	curl :8970/metrics
//
// With -coordinator, the worker registers itself with a vpicfleet
// control plane (re-registering every -heartbeat as liveness). POST
// /v1/drain or SIGUSR1 starts a graceful drain: admissions stop (503),
// running jobs checkpoint, and the process exits 0 so a successor on
// the same spool resumes the backlog — the rolling-restart primitive.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (see -debug-addr)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"govpic/internal/server"
	"govpic/internal/valid"
)

func main() {
	var (
		addr      = flag.String("addr", ":8970", "HTTP listen address")
		debugAddr = flag.String("debug-addr", "", "if set, serve net/http/pprof on this address (e.g. localhost:6060)")
		spool     = flag.String("spool", "vpicd-spool", "durable job spool directory")
		runners   = flag.Int("runners", 1, "concurrent job executors")
		queue     = flag.Int("queue", 16, "job queue depth (full queue answers 429)")
		ckptEvery = flag.Int("checkpoint-every", 50, "steps between crash-safety checkpoints")
		energy    = flag.Int("energy-every", 10, "steps between energy history samples")

		coordinator = flag.String("coordinator", "", "vpicfleet base URL to register with (e.g. http://host:8990)")
		advertise   = flag.String("advertise", "", "base URL the coordinator reaches this worker at (default http://127.0.0.1<addr>)")
		heartbeat   = flag.Duration("heartbeat", 5*time.Second, "coordinator re-registration interval")
		validate    = flag.String("validate", "", "run the physics-validation suite at startup: fast | full (served at /v1/valid and /metrics)")
	)
	flag.Parse()

	if *debugAddr != "" {
		// Profiling stays off the job API listener: the pprof handlers
		// sit on the default mux, served only here, so production
		// deployments expose them on localhost (or not at all) without
		// touching the service surface.
		go func() {
			log.Printf("vpicd: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("vpicd: debug listener: %v", err)
			}
		}()
	}

	srv, err := server.New(server.Config{
		SpoolDir:        *spool,
		Runners:         *runners,
		QueueDepth:      *queue,
		CheckpointEvery: *ckptEvery,
		EnergyEvery:     *energy,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *validate != "" {
		tier := valid.Tier(*validate)
		if tier != valid.TierFast && tier != valid.TierFull {
			log.Fatalf("vpicd: -validate %q: want fast or full", *validate)
		}
		// The suite runs concurrently with service startup — the worker
		// serves jobs immediately and its physics attestation appears on
		// /v1/valid and /metrics when the cases finish (seconds for the
		// fast tier).
		go func() {
			rep := valid.RunSuite(valid.Builtin(), tier, log.Printf)
			srv.SetValidReport(rep)
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("vpicd: listening on %s (spool %s, %d runners, queue %d)",
			*addr, *spool, *runners, *queue)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	if *coordinator != "" {
		adv := *advertise
		if adv == "" {
			// -addr may be ":8970" (all interfaces) or "host:8970"; only
			// the former needs a loopback host filled in.
			if strings.HasPrefix(*addr, ":") {
				adv = "http://127.0.0.1" + *addr
			} else {
				adv = "http://" + *addr
			}
		}
		go registerLoop(ctx, *coordinator, adv, *heartbeat)
	}

	// SIGUSR1 is the signal-level drain trigger (POST /v1/drain is the
	// HTTP-level one); both stop admissions and land in DrainRequested.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)

	select {
	case <-ctx.Done():
		log.Printf("vpicd: shutdown requested; checkpointing running jobs")
	case <-usr1:
		srv.Drain()
		log.Printf("vpicd: SIGUSR1 drain; admissions stopped, checkpointing running jobs")
	case <-srv.DrainRequested():
		log.Printf("vpicd: drain requested; admissions stopped, checkpointing running jobs")
	case err := <-errc:
		log.Fatal(err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("vpicd: http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("vpicd: close: %v", err)
	}
	log.Printf("vpicd: all jobs checkpointed; exiting")
}

// registerLoop announces this worker to the fleet coordinator and
// keeps re-registering as a heartbeat; re-registration also revives a
// worker the coordinator had declared dead (rolling restart).
func registerLoop(ctx context.Context, coordinator, advertise string, every time.Duration) {
	body, _ := json.Marshal(map[string]string{"url": advertise})
	registered := false
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordinator+"/v1/workers", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			resp, rerr := http.DefaultClient.Do(req)
			if rerr == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK && !registered {
					log.Printf("vpicd: registered with coordinator %s as %s", coordinator, advertise)
					registered = true
				}
			} else if registered {
				log.Printf("vpicd: coordinator heartbeat failed: %v", rerr)
				registered = false
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
