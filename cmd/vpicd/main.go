// Command vpicd is the simulation job service: it accepts deck configs
// (single runs or parameter sweeps) over HTTP, queues them with bounded
// backpressure, executes them on a runner pool with periodic bit-exact
// checkpoints, and resumes interrupted jobs from its spool directory on
// restart. SIGTERM/SIGINT checkpoint every running job before exit, so
// a rolling restart loses no work.
//
// Usage:
//
//	vpicd -addr :8970 -spool /var/lib/vpicd
//
// Then, e.g.:
//
//	curl -X POST :8970/v1/jobs -d '{"deck":{"deck":"lpi","steps":4000},"sweep":{"a0":[0.01,0.02,0.03]}}'
//	curl :8970/v1/jobs/job-000001
//	curl :8970/v1/jobs/job-000001/result
//	curl :8970/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (see -debug-addr)
	"os"
	"os/signal"
	"syscall"
	"time"

	"govpic/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8970", "HTTP listen address")
		debugAddr = flag.String("debug-addr", "", "if set, serve net/http/pprof on this address (e.g. localhost:6060)")
		spool     = flag.String("spool", "vpicd-spool", "durable job spool directory")
		runners   = flag.Int("runners", 1, "concurrent job executors")
		queue     = flag.Int("queue", 16, "job queue depth (full queue answers 429)")
		ckptEvery = flag.Int("checkpoint-every", 50, "steps between crash-safety checkpoints")
		energy    = flag.Int("energy-every", 10, "steps between energy history samples")
	)
	flag.Parse()

	if *debugAddr != "" {
		// Profiling stays off the job API listener: the pprof handlers
		// sit on the default mux, served only here, so production
		// deployments expose them on localhost (or not at all) without
		// touching the service surface.
		go func() {
			log.Printf("vpicd: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("vpicd: debug listener: %v", err)
			}
		}()
	}

	srv, err := server.New(server.Config{
		SpoolDir:        *spool,
		Runners:         *runners,
		QueueDepth:      *queue,
		CheckpointEvery: *ckptEvery,
		EnergyEvery:     *energy,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("vpicd: listening on %s (spool %s, %d runners, queue %d)",
			*addr, *spool, *runners, *queue)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("vpicd: shutdown requested; checkpointing running jobs")
	case err := <-errc:
		log.Fatal(err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("vpicd: http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("vpicd: close: %v", err)
	}
	log.Printf("vpicd: all jobs checkpointed; exiting")
}
