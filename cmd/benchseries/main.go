// Command benchseries appends one benchmark record to the committed
// perf time series (bench/series.json), keyed by commit, date and
// push kernel. Where benchgate answers "did this run regress against
// the latest baseline", the series answers "what has throughput done
// over the project's history" — it survives baseline re-anchors and
// gives dashboards a single file to plot (ROADMAP item 5).
//
// Usage:
//
//	benchseries -record bench-record.json [-series bench/series.json] [-commit <sha>]
//	benchseries -series bench/series.json -print
//
// -commit defaults to `git rev-parse --short=12 HEAD`, with a
// "+dirty" suffix when the worktree has uncommitted changes; CI
// passes the pushed SHA explicitly. Re-appending the same
// commit/deck/kernel replaces the existing point instead of
// duplicating it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"govpic/internal/output"
)

func main() {
	record := flag.String("record", "bench-record.json", "benchmark record (written by vpic -bench-json) to append")
	series := flag.String("series", "bench/series.json", "series file to append into (created if missing)")
	commit := flag.String("commit", "", "commit key for the entry (default: git rev-parse --short=12 HEAD, +dirty if unclean)")
	print := flag.Bool("print", false, "print the series as a table instead of appending")
	flag.Parse()

	entries, err := loadSeries(*series)
	if err != nil {
		fatal(err)
	}
	if *print {
		printSeries(os.Stdout, entries)
		return
	}

	f, err := os.Open(*record)
	if err != nil {
		fatal(err)
	}
	rec, err := output.ReadBench(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	sha := *commit
	if sha == "" {
		if sha, err = gitCommit(); err != nil {
			fatal(fmt.Errorf("no -commit and git unavailable: %w", err))
		}
	}

	entry := output.SeriesEntryFromBench(sha, rec)
	entries = output.AppendSeries(entries, entry)
	err = output.WriteFileAtomic(*series, func(w io.Writer) error {
		return output.WriteSeries(w, entries)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d entries (+ %s %s deck=%s kernel=%s %.3f Mpart/s)\n",
		*series, len(entries), entry.Date, entry.Commit, entry.Deck, kernelName(entry.Kernel), entry.MPartPerS)
}

func loadSeries(path string) ([]output.SeriesEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return output.ReadSeries(f)
}

func printSeries(w io.Writer, entries []output.SeriesEntry) {
	fmt.Fprintf(w, "%-10s  %-14s  %-9s  %-6s  %5s  %8s  %9s  %7s\n",
		"date", "commit", "deck", "kernel", "ranks", "Mpart/s", "B/push", "Gflop/s")
	for _, e := range entries {
		fmt.Fprintf(w, "%-10s  %-14s  %-9s  %-6s  %5d  %8.3f  %9.2f  %7.3f\n",
			e.Date, e.Commit, e.Deck, kernelName(e.Kernel), e.Ranks, e.MPartPerS, e.BytesPerPush, e.GFlopPerS)
	}
}

func kernelName(k string) string {
	if k == "" {
		return "-"
	}
	return k
}

// gitCommit resolves the worktree's HEAD, tagging uncommitted state so
// a series point can never silently claim a clean commit it wasn't
// measured on.
func gitCommit() (string, error) {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "", err
	}
	sha := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		sha += "+dirty"
	}
	return sha, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchseries:", err)
	os.Exit(1)
}
