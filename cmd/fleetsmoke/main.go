// Command fleetsmoke is the CI acceptance driver for the fleet tier:
// it boots a real vpicfleet coordinator and two real vpicd workers as
// separate processes, submits a two-shard sweep through the federated
// API, SIGKILLs the worker owning shard one once its checkpoint has
// been mirrored, and asserts that every shard still completes — with
// the relocated shard's energy history and final-state CRC
// bit-identical to a clean, unkilled run of the same spec.
//
// Usage (from the repo root):
//
//	go build -o vpicd ./cmd/vpicd
//	go build -o vpicfleet ./cmd/vpicfleet
//	go run ./cmd/fleetsmoke -vpicd ./vpicd -vpicfleet ./vpicfleet
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"syscall"
	"time"

	"govpic/internal/server"
)

var (
	vpicdBin     = flag.String("vpicd", "./vpicd", "path to the vpicd binary")
	vpicfleetBin = flag.String("vpicfleet", "./vpicfleet", "path to the vpicfleet binary")
	steps        = flag.Int("steps", 600, "steps per sweep shard")
	timeout      = flag.Duration("timeout", 3*time.Minute, "overall deadline")
)

func main() {
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("fleetsmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

// freePort grabs an ephemeral localhost port.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// proc is one child process of the smoke fleet.
type proc struct {
	cmd  *exec.Cmd
	base string // HTTP base URL
}

func start(name string, base string, args ...string) (*proc, error) {
	cmd := exec.Command(name, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	return &proc{cmd: cmd, base: base}, nil
}

func (p *proc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

func getJSON(base, path string, v any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("GET %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// fleetJob is the coordinator job view the smoke reads.
type fleetJob struct {
	State       string `json:"state"`
	WorkerURL   string `json:"worker_url"`
	MirrorStep  int    `json:"mirror_step"`
	Relocations int    `json:"relocations"`
	Error       string `json:"error"`
}

func run() error {
	deadline := time.Now().Add(*timeout)
	sweepBody := fmt.Sprintf(
		`{"deck":{"deck":"thermal","steps":%d,"nx":32,"ppc":64,"workers":1},"sweep":{"uth":[0.03,0.05]}}`,
		*steps)

	fleetPort, err := freePort()
	if err != nil {
		return err
	}
	fleetBase := fmt.Sprintf("http://127.0.0.1:%d", fleetPort)
	mirror, err := os.MkdirTemp("", "fleetsmoke-mirror-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(mirror)
	coord, err := start(*vpicfleetBin, fleetBase,
		"-addr", fmt.Sprintf("127.0.0.1:%d", fleetPort),
		"-mirror", mirror,
		"-probe-every", "100ms", "-probe-timeout", "1s", "-dead-after", "3",
		"-poll-every", "25ms")
	if err != nil {
		return err
	}
	defer coord.kill()

	workers := map[string]*proc{} // base URL → process
	for i := 0; i < 2; i++ {
		port, err := freePort()
		if err != nil {
			return err
		}
		base := fmt.Sprintf("http://127.0.0.1:%d", port)
		spool, err := os.MkdirTemp("", "fleetsmoke-spool-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(spool)
		w, err := start(*vpicdBin, base,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-spool", spool,
			"-runners", "1", "-checkpoint-every", "20", "-energy-every", "20",
			"-coordinator", fleetBase, "-advertise", base, "-heartbeat", "500ms")
		if err != nil {
			return err
		}
		defer w.kill()
		workers[base] = w
	}

	// Both workers must register and probe alive before the sweep goes in.
	log.Print("waiting for 2 alive workers")
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("workers never registered")
		}
		var reg struct {
			Workers []struct {
				State     string `json:"state"`
				QueueFree int    `json:"queue_free"`
			} `json:"workers"`
		}
		alive := 0
		if getJSON(fleetBase, "/v1/workers", &reg) == nil {
			for _, w := range reg.Workers {
				if w.State == "alive" && w.QueueFree > 0 {
					alive++
				}
			}
		}
		if alive == 2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Post(fleetBase+"/v1/jobs", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		return err
	}
	var sub server.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || len(sub.Jobs) != 2 {
		return fmt.Errorf("fleet submit: HTTP %d, jobs %v (%v)", resp.StatusCode, sub.Jobs, err)
	}
	victim := sub.Jobs[0].ID
	log.Printf("sweep submitted: %s + %s", sub.Jobs[0].ID, sub.Jobs[1].ID)

	// Kill the victim's worker — SIGKILL, no drain, no checkpoint-on-exit
	// — once the coordinator has mirrored a checkpoint to relocate from.
	var victimURL string
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("victim shard never mirrored a checkpoint")
		}
		var v fleetJob
		if err := getJSON(fleetBase, "/v1/jobs/"+victim, &v); err != nil {
			return err
		}
		if v.State == "completed" || v.State == "failed" {
			return fmt.Errorf("victim reached %s before the kill; raise -steps", v.State)
		}
		if v.MirrorStep >= 20 {
			victimURL = v.WorkerURL
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	wp := workers[victimURL]
	if wp == nil {
		return fmt.Errorf("victim worker URL %q unknown", victimURL)
	}
	log.Printf("SIGKILL worker %s (owns %s)", victimURL, victim)
	if err := wp.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return err
	}
	wp.cmd.Wait()

	// Every shard must still complete, the victim via relocation.
	results := map[string]server.Result{}
	for _, jr := range sub.Jobs {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("shard %s never completed", jr.ID)
			}
			var v fleetJob
			if err := getJSON(fleetBase, "/v1/jobs/"+jr.ID, &v); err != nil {
				return err
			}
			if v.State == "completed" {
				break
			}
			if v.State == "failed" {
				return fmt.Errorf("shard %s failed: %s", jr.ID, v.Error)
			}
			time.Sleep(25 * time.Millisecond)
		}
		var res server.Result
		if err := getJSON(fleetBase, "/v1/jobs/"+jr.ID+"/result", &res); err != nil {
			return err
		}
		results[jr.ID] = res
	}
	var v fleetJob
	if err := getJSON(fleetBase, "/v1/jobs/"+victim, &v); err != nil {
		return err
	}
	if v.Relocations < 1 {
		return fmt.Errorf("victim shard reports %d relocations, want >= 1", v.Relocations)
	}
	log.Printf("all shards completed; victim relocated %d time(s)", v.Relocations)

	// Clean control: the same sweep straight onto the surviving worker
	// (expansion order is deterministic, so shard i maps to control i).
	var survivorURL string
	for url := range workers {
		if url != victimURL {
			survivorURL = url
		}
	}
	resp, err = http.Post(survivorURL+"/v1/jobs", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		return err
	}
	var ctl server.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&ctl)
	resp.Body.Close()
	if err != nil || len(ctl.Jobs) != 2 {
		return fmt.Errorf("control submit: HTTP %d (%v)", resp.StatusCode, err)
	}
	for i, jr := range ctl.Jobs {
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("control job %s never completed", jr.ID)
			}
			var j server.Job
			if err := getJSON(survivorURL, "/v1/jobs/"+jr.ID, &j); err != nil {
				return err
			}
			if j.State == server.StateCompleted {
				break
			}
			if j.State.Terminal() {
				return fmt.Errorf("control job %s reached %s: %s", jr.ID, j.State, j.Error)
			}
			time.Sleep(25 * time.Millisecond)
		}
		var want server.Result
		if err := getJSON(survivorURL, "/v1/jobs/"+jr.ID+"/result", &want); err != nil {
			return err
		}
		got := results[sub.Jobs[i].ID]
		if !reflect.DeepEqual(got.History, want.History) {
			return fmt.Errorf("shard %s: relocated energy history differs from the clean run", sub.Jobs[i].ID)
		}
		if got.StateCRC == "" || got.StateCRC != want.StateCRC {
			return fmt.Errorf("shard %s: state CRC %q != clean run %q", sub.Jobs[i].ID, got.StateCRC, want.StateCRC)
		}
	}
	log.Print("relocated shard is bit-identical to the clean run (history + state CRC)")

	// The relocation must be visible in fleet metrics.
	mresp, err := http.Get(fleetBase + "/metrics")
	if err != nil {
		return err
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	reloc := 0
	for _, line := range strings.Split(string(mb), "\n") {
		fmt.Sscanf(line, "vpicfleet_relocations_total %d", &reloc)
	}
	if reloc < 1 {
		return fmt.Errorf("vpicfleet_relocations_total %d, want >= 1", reloc)
	}
	return nil
}
