// SRS: a miniature of the paper's production run — a laser drives
// stimulated Raman backscatter in a hohlraum-like plasma slab, a
// counter-propagating seed selects the backscatter mode, and a
// reflectometer in the vacuum gap measures the reflected light. The
// deck's notes carry the matched linear theory (frequencies, Landau
// damping, gain) computed by the same solver the paper-scale study uses.
package main

import (
	"fmt"
	"log"

	"govpic"
	"govpic/internal/diag"
)

func main() {
	a0 := 0.06 // ≈ 4×10^15 W/cm² at 351 nm
	p := govpic.DefaultLPIParams(a0)
	p.PlateauLength = 40
	p.PPC = 128
	d, err := govpic.LPIDeck(p)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := d.New()
	if err != nil {
		log.Fatal(err)
	}

	u := govpic.NewUnitsFromWavelength(351e-9)
	fmt.Printf("pump a0 = %.3g (I = %.2g W/cm² at 351 nm), n = 0.1 ncr, Te = 2.6 keV\n",
		a0, govpic.IntensityFromA0(a0, 351e-9))
	fmt.Printf("box %.0f c/ω0 (%.2f µm), %d cells, %d particles\n",
		d.Notes["total"], d.Notes["total"]*u.LengthUnit()*1e6, d.Cfg.NX, sim.TotalParticles())
	fmt.Printf("SRS matching: ωs = %.3f ω0, ke = %.3f ω0/c, kλD = %.3f, νL = %.4f\n",
		d.Notes["ws"], d.Notes["ke"], d.Notes["kld"], d.Notes["nuL"])
	fmt.Printf("linear gain prediction R = %.3g (seed floor %.3g)\n",
		d.Notes["Rlinear"], d.Notes["Rfloor"])

	rk, ix, err := sim.RankAt(d.Notes["probeX"])
	if err != nil {
		log.Fatal(err)
	}
	refl := &diag.Reflectometer{IX: ix, Record: true}
	total := d.Notes["total"]
	for sim.Time() < 2*total+250 {
		sim.Step()
		if sim.Time() > total+60 {
			refl.Sample(rk.D.F, sim.Time())
		}
	}
	fmt.Printf("measured reflectivity: mean %.3g, burst peak %.3g, burstiness σ/µ = %.2f\n",
		refl.Reflectivity(), refl.MaxWindowed(50), refl.Burstiness())
	if refl.Reflectivity() <= d.Notes["Rfloor"] {
		log.Fatal("no Raman amplification above the seed floor")
	}
	fmt.Println("backscatter amplified above the seed floor: SRS ok")
}
