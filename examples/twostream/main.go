// Two-stream instability: two counter-streaming electron beams feed a
// Langmuir wave that grows exponentially out of numerical noise at a
// rate near the cold-beam theory γ = ωpe/√8, then traps the beams and
// saturates — the smallest complete demonstration of the kinetic
// physics (instability, trapping, saturation) the paper's LPI runs
// resolve at scale.
package main

import (
	"fmt"
	"log"
	"math"

	"govpic"
)

func main() {
	const (
		n0 = 0.2 // density, critical units → ωpe = 0.447
		u0 = 0.1 // beam drift, γv/c
		nx = 128 // cells
		pp = 64  // particles per cell per beam
	)
	d := govpic.TwoStreamDeck(nx, pp, n0, u0)
	sim, err := d.New()
	if err != nil {
		log.Fatal(err)
	}
	wpe := d.Notes["wpe"]
	gTheory := d.Notes["gammaMax"]
	fmt.Printf("two beams of %d particles; ωpe = %.3f, theory γ_max = %.4f\n",
		sim.TotalParticles(), wpe, gTheory)

	// Record the field-energy history through the linear growth phase.
	type sample struct{ t, e float64 }
	var hist []sample
	for sim.Time() < 120/wpe {
		sim.Step()
		if sim.StepCount()%5 == 0 {
			hist = append(hist, sample{sim.Time(), sim.Energy().EField})
		}
	}

	// Fit the growth rate on the exponential stretch: a least-squares
	// slope of log(E) over samples between 10× the noise floor and a
	// quarter of the saturation energy.
	floor := hist[0].e
	peak := 0.0
	for _, h := range hist {
		peak = math.Max(peak, h.e)
	}
	// Use only the first rise: from the last dip below 10× floor to the
	// first crossing of peak/4 (everything later is saturated sloshing).
	end := len(hist)
	for i, h := range hist {
		if h.e > peak/4 {
			end = i
			break
		}
	}
	start := 0
	for i := 0; i < end; i++ {
		if hist[i].e < 10*floor {
			start = i + 1
		}
	}
	var n, st, se, stt, ste float64
	for _, h := range hist[start:end] {
		le := math.Log(h.e)
		n++
		st += h.t
		se += le
		stt += h.t * h.t
		ste += h.t * le
	}
	if n < 3 {
		log.Fatal("no clean exponential window found; increase run length")
	}
	slope := (n*ste - st*se) / (n*stt - st*st)
	// Field ENERGY grows at 2γ.
	gMeasured := slope / 2
	fmt.Printf("measured growth rate γ = %.4f = %.2f·ωpe (theory %.4f = %.2f·ωpe)\n",
		gMeasured, gMeasured/wpe, gTheory, gTheory/wpe)
	fmt.Printf("saturated field energy %.3g (%.1fx the noise floor)\n", peak, peak/floor)
	if peak < 300*floor {
		log.Fatal("instability did not develop")
	}
}
