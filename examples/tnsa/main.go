// TNSA ion acceleration: an intense laser strikes a thin overdense
// target, heats electrons to the ponderomotive temperature, and the
// hot-electron sheath on the rear surface accelerates protons out of a
// thin contamination layer — the community cross-code benchmark (the
// EPOCH/LSP/WarpX comparison paper) and ROADMAP item 4, at smoke
// scale. Prints the three comparison observables: maximum proton
// energy, the ion energy spectrum, and the hot-electron temperature.
package main

import (
	"fmt"
	"log"
	"math"

	"govpic"
	"govpic/internal/valid"
)

func main() {
	const a0 = 5.0 // ≈3.4e19 W/cm² at 800 nm — mid-range of the comparison scan
	p := govpic.DefaultTNSAParams(a0)
	d, err := govpic.TNSADeck(p)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := d.New()
	if err != nil {
		log.Fatal(err)
	}
	thot := d.Notes["thotPond"]
	fmt.Printf("a0 = %.1f on a %.1f ncr slab (%.1f c/ω0 + %.2f c/ω0 proton layer), %d particles\n",
		a0, p.NeTarget, p.TargetThickness, p.ContamThickness, sim.TotalParticles())
	fmt.Printf("Wilks ponderomotive hot-electron scale: %.2f me·c² (%.2f MeV)\n",
		thot, thot*govpic.MeVPerMc2)

	steps := 2200 // ≈100/ω0: sheath forms and the fastest protons detach
	for sim.StepCount() < steps {
		sim.Step()
		if sim.StepCount()%400 == 0 {
			e := sim.Energy()
			fmt.Printf("  step %4d  t=%5.1f  field=%.3g  kinetic(e,i,p)=%.3g %.3g %.3g\n",
				sim.StepCount(), sim.Time(), e.EField+e.BField,
				e.Kinetic[0], e.Kinetic[1], e.Kinetic[2])
		}
	}

	// The three comparison observables, through the validation
	// subsystem's extractor (identical code path to `validate`).
	pr := valid.NewSimProbe(sim)
	const elec, ion, proton = 0, 1, 2
	maxP := pr.MaxKE(proton)
	maxI := pr.MaxKE(ion)
	hotTe, hotW := pr.TailKE(elec, thot/4)
	fmt.Printf("\nmax proton energy:        %.2f MeV\n", maxP*govpic.MeVPerMc2)
	fmt.Printf("max ion energy:           %.2f MeV (%.2f MeV/nucleon, C6+)\n",
		maxI*govpic.MeVPerMc2, maxI*govpic.MeVPerMc2/12)
	fmt.Printf("hot-electron temperature: %.2f me·c² = %.2f MeV (%.2fx ponderomotive, tail weight %.3g)\n",
		hotTe, hotTe*govpic.MeVPerMc2, hotTe/thot, hotW)

	// Ion (proton-layer) energy spectrum, log-binned display.
	spec := pr.SpectrumKE(proton, 20, 40)
	fmt.Println("\nproton spectrum dN/dE (me·c² bins):")
	for b, w := range spec {
		if w == 0 {
			continue
		}
		bar := int(math.Max(1, 6*math.Log10(w/1e-3)))
		fmt.Printf("  %5.2f–%5.2f %8.3g %s\n",
			float64(b)*0.5, float64(b+1)*0.5, w, stars(bar))
	}

	if maxP*govpic.MeVPerMc2 < 0.5 {
		log.Fatal("protons did not accelerate to the MeV scale")
	}
	if hotTe < thot/4 || hotTe > 4*thot {
		log.Fatal("hot-electron temperature far from the ponderomotive scale")
	}
	fmt.Println("\nTNSA: hot-electron sheath accelerated the proton layer: ok")
}

func stars(n int) string {
	if n > 40 {
		n = 40
	}
	s := ""
	for i := 0; i < n; i++ {
		s += "*"
	}
	return s
}
