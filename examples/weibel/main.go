// Weibel instability: a temperature-anisotropic plasma (hot across,
// cold along x) spontaneously grows magnetic field — exercising the
// full electromagnetic update (the two-stream example is electrostatic
// in practice; here the B arrays carry the physics).
package main

import (
	"fmt"
	"log"
	"math"

	"govpic"
)

func main() {
	const (
		n0      = 0.2
		uthHot  = 0.15 // transverse (y) thermal momentum
		uthCold = 0.015
		nx      = 128
		ppc     = 128
	)
	d := govpic.WeibelDeck(nx, ppc, n0, uthHot, uthCold)
	sim, err := d.New()
	if err != nil {
		log.Fatal(err)
	}
	wpe := d.Notes["wpe"]
	fmt.Printf("anisotropy A = T⊥/T∥ − 1 = %.0f, ωpe = %.3f\n",
		(uthHot*uthHot)/(uthCold*uthCold)-1, wpe)

	// B starts exactly zero (it only grows through ∇×E); take the noise
	// floor a few steps in, once the particle noise has seeded it.
	sim.Run(20)
	b0 := sim.Energy().BField
	t0 := sim.Time()
	var bPeak, tPeak float64
	var bMid, tMid float64
	for sim.Time() < 250/wpe {
		sim.Step()
		if sim.StepCount()%10 != 0 {
			continue
		}
		e := sim.Energy()
		if e.BField > bPeak {
			bPeak, tPeak = e.BField, sim.Time()
		}
		if bMid == 0 && e.BField > 300*b0 {
			bMid, tMid = e.BField, sim.Time()
		}
	}
	tMid -= t0
	fmt.Printf("magnetic energy: noise floor %.3g → peak %.3g (%.0fx) at t = %.1f\n",
		b0, bPeak, bPeak/b0, tPeak)
	if bMid > 0 {
		// Crude growth-rate estimate from floor to the 300x crossing
		// (field energy grows at 2γ).
		g := math.Log(bMid/b0) / tMid / 2
		fmt.Printf("effective growth rate ≈ %.4f = %.2f·ωpe·β⊥ (theory scale %.4f)\n",
			g, g/(wpe*uthHot), d.Notes["gammaScale"])
	}
	if bPeak < 100*b0 {
		log.Fatal("Weibel instability did not grow")
	}
	fmt.Println("anisotropy relaxed into magnetic field: Weibel ok")
}
