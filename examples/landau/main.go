// Landau damping and O'Neil trapping: a seeded Langmuir wave oscillates
// at the *kinetic* frequency (upshifted from fluid Bohm-Gross), damps
// collisionlessly, and then — once the resonant electrons complete a
// bounce orbit — the damping shuts off and the wave rings at a
// trapped-particle plateau. This amplitude-dependent shutdown of Landau
// damping is precisely the "trapping nonlinearity" whose paper-scale
// consequence (inflated SRS reflectivity) the trillion-particle runs
// were built to capture; at PIC-noise-compatible amplitudes the wave is
// always in this weakly nonlinear regime, so the damping is fitted on
// the pre-bounce phase.
package main

import (
	"fmt"
	"log"
	"math"

	"govpic"
	"govpic/internal/diag"
)

func main() {
	const (
		n0   = 0.2
		uth  = 0.1 // 5 keV-ish: non-relativistic; mode 8 gives kλD ≈ 0.35
		mode = 8
		nx   = 64
		ppc  = 2048 // heavy loading: the mode must stand above noise
		amp  = 0.01
	)
	d := govpic.LandauDeck(nx, ppc, mode, n0, uth, amp)
	sim, err := d.New()
	if err != nil {
		log.Fatal(err)
	}
	k := d.Notes["k"]
	kld := d.Notes["kLD"]
	root, err := govpic.EPWDispersion(k, n0, uth*uth)
	if err != nil {
		log.Fatal(err)
	}
	wTheory, gTheory := real(root), -imag(root)
	bohmGross := math.Sqrt(n0 + 3*k*k*uth*uth)
	fmt.Printf("kλD = %.3f: kinetic ω = %.4f (fluid Bohm-Gross %.4f), γ_L = %.5f\n",
		kld, wTheory, bohmGross, gTheory)

	// Project Ex onto the seeded mode each step: the projection
	// oscillates at the wave frequency; its window-max square is the
	// wave power envelope.
	rk := sim.Ranks[0]
	lx := float64(nx) * d.Cfg.DX
	project := func() float64 {
		line := diag.LineOutEx(rk.D.F, 1, 1)
		var re float64
		for i, v := range line {
			x := (float64(i) + 0.5) * d.Cfg.DX
			re += v * math.Sin(2*math.Pi*float64(mode)*x/lx)
		}
		return re * 2 / float64(nx)
	}

	type sample struct{ t, a float64 }
	var series []sample
	tEnd := 2.5 / gTheory
	for sim.Time() < tEnd {
		sim.Step()
		series = append(series, sample{sim.Time(), project()})
	}

	// Frequency from zero crossings of the projection.
	var crossings []float64
	for i := 1; i < len(series); i++ {
		a, b := series[i-1], series[i]
		if (a.a < 0 && b.a >= 0) || (a.a > 0 && b.a <= 0) {
			crossings = append(crossings, a.t+(b.t-a.t)*a.a/(a.a-b.a))
		}
	}
	if len(crossings) < 10 {
		log.Fatalf("too few oscillation zero crossings: %d", len(crossings))
	}
	nc := len(crossings) - 1
	wMeasured := math.Pi * float64(nc) / (crossings[nc] - crossings[0])
	fmt.Printf("measured ω = %.4f (kinetic %.4f: %.1f%% off; fluid %.4f: %.1f%% off)\n",
		wMeasured, wTheory, 100*math.Abs(wMeasured-wTheory)/wTheory,
		bohmGross, 100*math.Abs(wMeasured-bohmGross)/bohmGross)
	if math.Abs(wMeasured-wTheory)/wTheory > 0.05 {
		log.Fatal("wave frequency far from kinetic dispersion")
	}

	// Envelope: window maxima of projection², one wave period per
	// window; fit the pre-bounce damping and report the plateau.
	window := 2 * math.Pi / wTheory
	var peaks []sample
	wStart, cur := series[0].t, 0.0
	for _, s := range series {
		if s.t-wStart > window {
			peaks = append(peaks, sample{wStart, cur})
			wStart, cur = s.t, 0
		}
		if p := s.a * s.a; p > cur {
			cur = p
		}
	}
	if len(peaks) < 6 {
		log.Fatalf("too few envelope windows: %d", len(peaks))
	}
	var plateau float64
	nLate := 0
	for _, p := range peaks {
		if p.t > 0.6*tEnd {
			plateau += p.a
			nLate++
		}
	}
	plateau /= float64(nLate)
	// Bounce time at the seeded field amplitude.
	e0 := math.Sqrt(peaks[0].a)
	tauB := 2 * math.Pi / math.Sqrt(k*e0)
	gMeasured := math.Log(peaks[0].a/peaks[1].a) / (peaks[1].t - peaks[0].t) / 2
	fmt.Printf("pre-bounce damping γ = %.4f (theory %.5f; bounce time ≈ %.0f)\n",
		gMeasured, gTheory, tauB)
	if gMeasured < gTheory/3 || gMeasured > 3*gTheory {
		log.Fatal("initial Landau damping far from kinetic theory")
	}
	fmt.Printf("late-time plateau %.3g = %.0f%% of the initial power: trapping shut the damping off\n",
		plateau, 100*plateau/peaks[0].a)
	if plateau < peaks[0].a/50 {
		log.Fatal("no trapping plateau: wave damped into the noise")
	}
	fmt.Println("kinetic dispersion + Landau damping + O'Neil plateau: ok")
}
