// Quickstart: build a cold plasma, ring it, and watch it oscillate at
// the plasma frequency — the "hello world" of particle-in-cell codes,
// using only the public govpic API.
package main

import (
	"fmt"
	"log"
	"math"

	"govpic"
)

func main() {
	// A quasi-1D periodic plasma at n = 0.25·ncr, so ωpe = 0.5·ωref.
	d := govpic.PlasmaOscillationDeck(64 /*cells*/, 64 /*particles per cell*/, 0.25)
	sim, err := d.New()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d particles on %d cells; dt = %.4f\n",
		sim.TotalParticles(), d.Cfg.NX, d.Cfg.DT)

	// Track the electric field energy: it oscillates at 2·ωpe as the
	// perturbation sloshes between kinetic and field energy.
	wpe := d.Notes["wpe"]
	var lastE float64
	var peaks []float64
	rising := false
	for sim.Time() < 12*2*math.Pi/wpe {
		sim.Step()
		e := sim.Energy().EField
		if e < lastE && rising {
			peaks = append(peaks, sim.Time())
		}
		rising = e > lastE
		lastE = e
	}
	if len(peaks) < 4 {
		log.Fatalf("expected several field-energy peaks, saw %d", len(peaks))
	}
	// Field energy peaks twice per plasma period.
	period := 2 * (peaks[len(peaks)-1] - peaks[0]) / float64(len(peaks)-1)
	fmt.Printf("measured plasma period %.3f (theory 2π/ωpe = %.3f)\n", period, 2*math.Pi/wpe)
	fmt.Printf("measured ωpe = %.4f, theory %.4f, error %.2f%%\n",
		2*math.Pi/period, wpe, 100*math.Abs(2*math.Pi/period-wpe)/wpe)

	final := sim.Energy()
	fmt.Printf("energy: field %.4g + kinetic %.4g = %.4g (drift-free to ~1%%)\n",
		final.EField+final.BField, final.Kinetic[0], final.Total)
}
